// Package models defines the benchmarked LLM architectures (paper
// Table III plus the 7B/2B models of Table I and Figs. 3/5) and builds
// their eager-mode prefill operator graphs, mirroring the ATen operator
// and kernel sequences HuggingFace transformers produce under PyTorch
// eager execution.
package models

import (
	"fmt"
	"math"
	"sort"
)

// Kind distinguishes the two transformer families the paper evaluates.
type Kind int

const (
	// Encoder is an encoder-only model (BERT family): a single forward
	// pass, no causal mask, pooler head.
	Encoder Kind = iota
	// Decoder is a decoder-only model (GPT/Llama family): causal
	// attention and an LM head; prefill produces the first token (TTFT).
	Decoder
)

func (k Kind) String() string {
	if k == Encoder {
		return "encoder-only"
	}
	return "decoder-only"
}

// Activation selects the MLP nonlinearity, which determines the eager
// kernel decomposition (GPT-2's tanh GELU explodes into 7 kernels).
type Activation int

const (
	// GELUExact is a single fused aten::gelu kernel (BERT, XLM-R).
	GELUExact Activation = iota
	// GELUNew is GPT-2's tanh approximation, 7 eager pointwise kernels.
	GELUNew
	// SiLUGate is the Llama/Mistral gated silu·mul pair.
	SiLUGate
	// GELUGate is Gemma's gated gelu·mul pair.
	GELUGate
)

// Norm selects the normalization flavor.
type Norm int

const (
	// LayerNorm (BERT, GPT-2): one kernel.
	LayerNorm Norm = iota
	// RMSNorm (Llama family): two eager kernels.
	RMSNorm
)

// Position selects the positional encoding scheme.
type Position int

const (
	// Learned position embeddings (BERT, GPT-2): an extra gather + add.
	Learned Position = iota
	// RoPE rotary embeddings (Llama family): per-layer q/k rotation
	// kernels.
	RoPE
)

// Config describes one model architecture.
type Config struct {
	Name         string // catalog key, e.g. "gpt2"
	HFName       string // HuggingFace hub id
	Kind         Kind
	Layers       int64
	Hidden       int64
	Heads        int64
	KVHeads      int64 // < Heads means grouped-query attention
	Intermediate int64
	Vocab        int64
	MaxSeq       int64
	Activation   Activation
	Norm         Norm
	Position     Position
	// TiedEmbeddings: LM head shares the embedding matrix (true for
	// GPT-2, Gemma, Llama-3.2-1B).
	TiedEmbeddings bool
}

// HeadDim returns the per-head dimension.
func (c *Config) HeadDim() int64 { return c.Hidden / c.Heads }

// KVDim returns the total key/value projection width (GQA-aware).
func (c *Config) KVDim() int64 { return c.KVHeads * c.HeadDim() }

// Params estimates the parameter count from the architecture.
func (c *Config) Params() int64 {
	h, l, i, v := c.Hidden, c.Layers, c.Intermediate, c.Vocab
	attn := h*h + 2*h*c.KVDim() + h*h // q, k, v, o
	var mlp int64
	switch c.Activation {
	case SiLUGate, GELUGate:
		mlp = 3 * h * i // gate, up, down
	default:
		mlp = 2 * h * i // in, out
	}
	norms := 2 * h // two norms per layer (scale params; bias negligible)
	perLayer := attn + mlp + norms
	emb := v * h
	if c.Position == Learned {
		emb += c.MaxSeq * h
	}
	head := int64(0)
	if c.Kind == Decoder && !c.TiedEmbeddings {
		head = v * h
	}
	if c.Kind == Encoder {
		head = h*h + h // pooler
	}
	return l*perLayer + emb + head
}

// ParamsBillion renders Params in billions.
func (c *Config) ParamsBillion() float64 {
	return float64(c.Params()) / 1e9
}

// String renders a one-line summary.
func (c *Config) String() string {
	return fmt.Sprintf("%s (%s, %dL, %dH, %.2fB params)",
		c.Name, c.Kind, c.Layers, c.Hidden, c.ParamsBillion())
}

// Validate checks architectural sanity.
func (c *Config) Validate() error {
	switch {
	case c.Name == "":
		return fmt.Errorf("models: config has no name")
	case c.Layers <= 0 || c.Hidden <= 0 || c.Heads <= 0 || c.Vocab <= 0:
		return fmt.Errorf("models: %s: non-positive dimension", c.Name)
	case c.Hidden%c.Heads != 0:
		return fmt.Errorf("models: %s: hidden %d not divisible by heads %d", c.Name, c.Hidden, c.Heads)
	case c.KVHeads <= 0 || c.Heads%c.KVHeads != 0:
		return fmt.Errorf("models: %s: heads %d not divisible by kv heads %d", c.Name, c.Heads, c.KVHeads)
	}
	return nil
}

// The paper's Table III benchmark workloads.

// BertBaseUncased returns google-bert/bert-base-uncased (110M).
func BertBaseUncased() *Config {
	return &Config{
		Name: "bert-base-uncased", HFName: "google-bert/bert-base-uncased",
		Kind: Encoder, Layers: 12, Hidden: 768, Heads: 12, KVHeads: 12,
		Intermediate: 3072, Vocab: 30522, MaxSeq: 512,
		Activation: GELUExact, Norm: LayerNorm, Position: Learned,
	}
}

// XLMRobertaBase returns FacebookAI/xlm-roberta-base (279M).
func XLMRobertaBase() *Config {
	return &Config{
		Name: "xlm-roberta-base", HFName: "FacebookAI/xlm-roberta-base",
		Kind: Encoder, Layers: 12, Hidden: 768, Heads: 12, KVHeads: 12,
		Intermediate: 3072, Vocab: 250002, MaxSeq: 514,
		Activation: GELUExact, Norm: LayerNorm, Position: Learned,
	}
}

// GPT2 returns openai-community/gpt2 (137M).
func GPT2() *Config {
	return &Config{
		Name: "gpt2", HFName: "openai-community/gpt2",
		Kind: Decoder, Layers: 12, Hidden: 768, Heads: 12, KVHeads: 12,
		Intermediate: 3072, Vocab: 50257, MaxSeq: 1024,
		Activation: GELUNew, Norm: LayerNorm, Position: Learned,
		TiedEmbeddings: true,
	}
}

// Llama32_1B returns meta-llama/Llama-3.2-1B (1.24B).
func Llama32_1B() *Config {
	return &Config{
		Name: "llama-3.2-1B", HFName: "meta-llama/Llama-3.2-1B",
		Kind: Decoder, Layers: 16, Hidden: 2048, Heads: 32, KVHeads: 8,
		Intermediate: 8192, Vocab: 128256, MaxSeq: 131072,
		Activation: SiLUGate, Norm: RMSNorm, Position: RoPE,
		TiedEmbeddings: true,
	}
}

// The Table I / Fig. 3 / Fig. 5 kernel-fusion study models.

// Gemma2B returns google/gemma-2b (Table I).
func Gemma2B() *Config {
	return &Config{
		Name: "gemma-2b", HFName: "google/gemma-2b",
		Kind: Decoder, Layers: 18, Hidden: 2048, Heads: 8, KVHeads: 1,
		Intermediate: 16384, Vocab: 256000, MaxSeq: 8192,
		Activation: GELUGate, Norm: RMSNorm, Position: RoPE,
		TiedEmbeddings: true,
	}
}

// Gemma7B returns google/gemma-7b (Fig. 3/5).
func Gemma7B() *Config {
	return &Config{
		Name: "gemma-7b", HFName: "google/gemma-7b",
		Kind: Decoder, Layers: 28, Hidden: 3072, Heads: 16, KVHeads: 16,
		Intermediate: 24576, Vocab: 256000, MaxSeq: 8192,
		Activation: GELUGate, Norm: RMSNorm, Position: RoPE,
		TiedEmbeddings: true,
	}
}

// Llama27B returns meta-llama/Llama-2-7b (Fig. 3/5).
func Llama27B() *Config {
	return &Config{
		Name: "llama2-7b", HFName: "meta-llama/Llama-2-7b-hf",
		Kind: Decoder, Layers: 32, Hidden: 4096, Heads: 32, KVHeads: 32,
		Intermediate: 11008, Vocab: 32000, MaxSeq: 4096,
		Activation: SiLUGate, Norm: RMSNorm, Position: RoPE,
	}
}

// Mistral7B returns mistralai/Mistral-7B-v0.1 (Fig. 3/5).
func Mistral7B() *Config {
	return &Config{
		Name: "mistral-7b", HFName: "mistralai/Mistral-7B-v0.1",
		Kind: Decoder, Layers: 32, Hidden: 4096, Heads: 32, KVHeads: 8,
		Intermediate: 14336, Vocab: 32000, MaxSeq: 32768,
		Activation: SiLUGate, Norm: RMSNorm, Position: RoPE,
	}
}

// TableIIIModels returns the paper's four benchmark workloads in table
// order.
func TableIIIModels() []*Config {
	return []*Config{BertBaseUncased(), XLMRobertaBase(), GPT2(), Llama32_1B()}
}

// FusionStudyModels returns the three 7B models of Figs. 3 and 5.
func FusionStudyModels() []*Config {
	return []*Config{Gemma7B(), Llama27B(), Mistral7B()}
}

// ByName looks up a model config.
func ByName(name string) (*Config, error) {
	for _, c := range allModels() {
		if c.Name == name {
			return c, nil
		}
	}
	return nil, fmt.Errorf("models: unknown model %q (have %v)", name, ModelNames())
}

// ModelNames lists the catalog, sorted.
func ModelNames() []string {
	var names []string
	for _, c := range allModels() {
		names = append(names, c.Name)
	}
	sort.Strings(names)
	return names
}

func allModels() []*Config {
	return []*Config{
		BertBaseUncased(), XLMRobertaBase(), GPT2(), Llama32_1B(),
		Gemma2B(), Gemma7B(), Llama27B(), Mistral7B(),
	}
}

// batchMaskKernels models the attention-mask preprocessing kernels whose
// count grows mildly with batch size in real HF pipelines (mask
// broadcast/expansion work); the paper's Fig. 7d shows eager launch
// counts creeping up with batch. Per layer.
func batchMaskKernels(batch int64) int {
	if batch <= 1 {
		return 0
	}
	return 2 * int(math.Ceil(math.Log2(float64(batch+1))))
}
