package models

import (
	"fmt"

	"github.com/skipsim/skip/internal/ops"
)

// BuildDecodeStep constructs one autoregressive decode iteration for a
// decoder-only model: a single new token per sequence attends over a KV
// cache of kvLen prior positions. Where prefill "puts pressure on the
// compute resources, the decode stage puts pressure on the memory
// subsystems" (paper §II-A): every weight matrix is read for one token
// of work, and attention streams the whole cache.
func BuildDecodeStep(c *Config, batch, kvLen int64, attn AttnImpl) (*ops.Graph, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if c.Kind != Decoder {
		return nil, fmt.Errorf("models: %s: decode step requires a decoder-only model", c.Name)
	}
	if batch <= 0 || kvLen <= 0 {
		return nil, fmt.Errorf("models: %s: batch (%d) and kvLen (%d) must be positive", c.Name, batch, kvLen)
	}
	g := &ops.Graph{Name: fmt.Sprintf("%s-decode-bs%d-kv%d-%s", c.Name, batch, kvLen, attn)}
	g.InputBytes = float64(batch * 8) // one token id per sequence
	g.OutputBytes = float64(batch * c.Vocab * 2)

	rows := batch // one token per sequence
	hiddenElems := rows * c.Hidden
	kvElems := rows * c.KVDim()
	h, hd := c.Heads, c.HeadDim()

	g.Nodes = append(g.Nodes, ops.Embedding("wte", rows, c.Hidden))
	if c.Position == Learned {
		g.Nodes = append(g.Nodes,
			ops.Embedding("wpe", rows, c.Hidden),
			ops.Pointwise("add", "emb_add_pos", hiddenElems, 2, 1),
		)
	}

	for layer := int64(0); layer < c.Layers; layer++ {
		switch c.Norm {
		case RMSNorm:
			g.Nodes = append(g.Nodes, ops.RMSNorm("input", rows, c.Hidden))
		default:
			g.Nodes = append(g.Nodes, ops.LayerNorm("ln_1", rows, c.Hidden))
		}
		g.Nodes = append(g.Nodes,
			ops.Linear("q_proj", batch, 1, c.Hidden, c.Hidden),
			ops.Linear("k_proj", batch, 1, c.Hidden, c.KVDim()),
			ops.Linear("v_proj", batch, 1, c.Hidden, c.KVDim()),
		)
		if c.Position == RoPE {
			g.Nodes = append(g.Nodes, ops.RoPE("q", hiddenElems), ops.RoPE("k", kvElems))
		}
		// KV-cache append: the new K/V rows are written next to the
		// cached ones.
		g.Nodes = append(g.Nodes,
			ops.Copy("cat", "kv_append_k", kvElems),
			ops.Copy("cat", "kv_append_v", kvElems),
		)
		if attn == AttnFlash {
			g.Nodes = append(g.Nodes, ops.DecodeFlashAttention(batch, h, kvLen, hd))
		} else {
			scoreElems := batch * h * kvLen
			g.Nodes = append(g.Nodes,
				// q·Kᵀ over the cache: 1×hd · hd×kvLen per head.
				ops.BMM("qk_decode", batch*h, 1, hd, kvLen),
				ops.Pointwise("add", "causal_mask", scoreElems, 2, 1),
				ops.Softmax("attn_decode", batch*h, kvLen),
				ops.Pointwise("to", "softmax_cast", scoreElems, 1, 0),
				ops.BMM("av_decode", batch*h, 1, kvLen, hd),
				ops.Copy("contiguous", "context", hiddenElems),
			)
		}
		g.Nodes = append(g.Nodes,
			ops.Linear("o_proj", batch, 1, c.Hidden, c.Hidden),
			ops.Pointwise("add", "attn_residual", hiddenElems, 2, 1),
		)
		switch c.Norm {
		case RMSNorm:
			g.Nodes = append(g.Nodes, ops.RMSNorm("post_attn", rows, c.Hidden))
		default:
			g.Nodes = append(g.Nodes, ops.LayerNorm("ln_2", rows, c.Hidden))
		}
		interElems := rows * c.Intermediate
		switch c.Activation {
		case SiLUGate:
			g.Nodes = append(g.Nodes,
				ops.Linear("gate_proj", batch, 1, c.Hidden, c.Intermediate),
				ops.Linear("up_proj", batch, 1, c.Hidden, c.Intermediate),
				ops.SiLUMul("mlp", interElems),
				ops.Linear("down_proj", batch, 1, c.Intermediate, c.Hidden),
			)
		case GELUGate:
			g.Nodes = append(g.Nodes,
				ops.Linear("gate_proj", batch, 1, c.Hidden, c.Intermediate),
				ops.Linear("up_proj", batch, 1, c.Hidden, c.Intermediate),
				ops.GELU("mlp_gate", interElems),
				ops.Pointwise("mul", "gate_mul", interElems, 2, 1),
				ops.Linear("down_proj", batch, 1, c.Intermediate, c.Hidden),
			)
		case GELUNew:
			g.Nodes = append(g.Nodes,
				ops.Conv1D("c_fc", batch, 1, c.Hidden, c.Intermediate),
				ops.NewGELU("mlp", interElems),
				ops.Conv1D("c_proj_mlp", batch, 1, c.Intermediate, c.Hidden),
			)
		default:
			g.Nodes = append(g.Nodes,
				ops.Linear("mlp_in", batch, 1, c.Hidden, c.Intermediate),
				ops.GELU("mlp", interElems),
				ops.Linear("mlp_out", batch, 1, c.Intermediate, c.Hidden),
			)
		}
		g.Nodes = append(g.Nodes, ops.Pointwise("add", "mlp_residual", hiddenElems, 2, 1))
	}

	switch c.Norm {
	case RMSNorm:
		g.Nodes = append(g.Nodes, ops.RMSNorm("final", rows, c.Hidden))
	default:
		g.Nodes = append(g.Nodes, ops.LayerNorm("final", rows, c.Hidden))
	}
	g.Nodes = append(g.Nodes, ops.Linear("lm_head", batch, 1, c.Hidden, c.Vocab))
	return g, nil
}
