package models

import (
	"strings"
	"testing"
	"testing/quick"

	"github.com/skipsim/skip/internal/ops"
)

func TestCatalogValidates(t *testing.T) {
	for _, c := range allModels() {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
}

func TestTableIIIParameterCounts(t *testing.T) {
	// Table III reports: Bert 110M, XLM-R 279M, GPT2 137M, Llama 1.24B.
	cases := []struct {
		cfg      *Config
		paramsB  float64
		tolerate float64
	}{
		{BertBaseUncased(), 0.110, 0.15},
		{XLMRobertaBase(), 0.279, 0.15},
		{GPT2(), 0.137, 0.15},
		{Llama32_1B(), 1.24, 0.10},
		{Gemma7B(), 8.5, 0.15},
		{Llama27B(), 6.7, 0.10},
		{Mistral7B(), 7.2, 0.10},
	}
	for _, c := range cases {
		got := c.cfg.ParamsBillion()
		lo, hi := c.paramsB*(1-c.tolerate), c.paramsB*(1+c.tolerate)
		if got < lo || got > hi {
			t.Errorf("%s params = %.3fB, want %.3fB ±%.0f%%", c.cfg.Name, got, c.paramsB, c.tolerate*100)
		}
	}
}

func TestHeadDimAndKV(t *testing.T) {
	llama := Llama32_1B()
	if llama.HeadDim() != 64 {
		t.Errorf("HeadDim = %d, want 64", llama.HeadDim())
	}
	if llama.KVDim() != 512 {
		t.Errorf("KVDim = %d, want 512 (GQA 8 heads × 64)", llama.KVDim())
	}
	bert := BertBaseUncased()
	if bert.KVDim() != bert.Hidden {
		t.Error("MHA models have full KV width")
	}
}

func TestEagerKernelCountsNearPaper(t *testing.T) {
	// Fig. 7d anchors at BS=1: GPT-2 403 launches, XLM-R 251.
	cases := []struct {
		cfg  *Config
		want int
		tol  float64
	}{
		{GPT2(), 403, 0.06},
		{XLMRobertaBase(), 251, 0.06},
	}
	for _, c := range cases {
		g, err := BuildPrefill(c.cfg, 1, 512, AttnEager)
		if err != nil {
			t.Fatal(err)
		}
		got := float64(g.KernelCount())
		lo, hi := float64(c.want)*(1-c.tol), float64(c.want)*(1+c.tol)
		if got < lo || got > hi {
			t.Errorf("%s eager kernels = %.0f, want %d ±%.0f%%", c.cfg.Name, got, c.want, c.tol*100)
		}
	}
}

func TestKernelCountGrowsMildlyWithBatch(t *testing.T) {
	// Fig. 7d: eager launches creep up with batch size.
	g1, _ := BuildPrefill(GPT2(), 1, 512, AttnEager)
	g2, _ := BuildPrefill(GPT2(), 2, 512, AttnEager)
	g4, _ := BuildPrefill(GPT2(), 4, 512, AttnEager)
	k1, k2, k4 := g1.KernelCount(), g2.KernelCount(), g4.KernelCount()
	if !(k1 < k2 && k2 < k4) {
		t.Errorf("kernel counts should grow: %d, %d, %d", k1, k2, k4)
	}
	if k4 > k1*12/10 {
		t.Errorf("growth should be mild: %d → %d", k1, k4)
	}
}

func TestFlashCutsKernels(t *testing.T) {
	for _, cfg := range allModels() {
		eager, err := BuildPrefill(cfg, 1, 512, AttnEager)
		if err != nil {
			t.Fatal(err)
		}
		flash, err := BuildPrefill(cfg, 1, 512, AttnFlash)
		if err != nil {
			t.Fatal(err)
		}
		if flash.KernelCount() >= eager.KernelCount() {
			t.Errorf("%s: flash (%d) must launch fewer kernels than eager (%d)",
				cfg.Name, flash.KernelCount(), eager.KernelCount())
		}
		// FLOPs roughly conserved: attention math unchanged.
		fe, ff := eager.TotalCost().FLOPs, flash.TotalCost().FLOPs
		if ff < fe*0.85 || ff > fe*1.05 {
			t.Errorf("%s: flash FLOPs %.3g vs eager %.3g", cfg.Name, ff, fe)
		}
		// Memory traffic strictly lower: no score materialization.
		if flash.TotalCost().Bytes() >= eager.TotalCost().Bytes() {
			t.Errorf("%s: flash bytes must shrink", cfg.Name)
		}
	}
}

func TestGPT2LaunchesMoreThanBert(t *testing.T) {
	// The paper's GPT-2 kernel count exceeds BERT's despite equal layer
	// counts — the tanh-GELU decomposition and masking dance.
	bert, _ := BuildPrefill(BertBaseUncased(), 1, 512, AttnEager)
	gpt2, _ := BuildPrefill(GPT2(), 1, 512, AttnEager)
	if gpt2.KernelCount() <= bert.KernelCount() {
		t.Errorf("gpt2 (%d) should out-launch bert (%d)", gpt2.KernelCount(), bert.KernelCount())
	}
}

func TestDecoderHasLMHeadGemm(t *testing.T) {
	g, _ := BuildPrefill(Llama32_1B(), 1, 512, AttnEager)
	found := false
	for _, k := range g.FlattenKernels() {
		if strings.Contains(k.Name, "lm_head") && k.Class == ops.ClassGemm {
			found = true
			// The LM head GEMM over a 128k vocab dominates FLOPs.
			if k.Cost.FLOPs < 1e11 {
				t.Errorf("lm_head FLOPs = %g, suspiciously small", k.Cost.FLOPs)
			}
		}
	}
	if !found {
		t.Error("decoder graph lacks lm_head GEMM")
	}
}

func TestEncoderHasPoolerNoLMHead(t *testing.T) {
	g, _ := BuildPrefill(BertBaseUncased(), 1, 512, AttnEager)
	var pooler, lmHead bool
	for _, k := range g.FlattenKernels() {
		if strings.Contains(k.Name, "pooler") {
			pooler = true
		}
		if strings.Contains(k.Name, "lm_head") {
			lmHead = true
		}
	}
	if !pooler || lmHead {
		t.Errorf("encoder head wrong: pooler=%v lmHead=%v", pooler, lmHead)
	}
}

func TestBuildPrefillRejectsBadArgs(t *testing.T) {
	c := GPT2()
	if _, err := BuildPrefill(c, 0, 512, AttnEager); err == nil {
		t.Error("batch 0 should fail")
	}
	if _, err := BuildPrefill(c, 1, 0, AttnEager); err == nil {
		t.Error("seq 0 should fail")
	}
	if _, err := BuildPrefill(c, 1, 99999, AttnEager); err == nil {
		t.Error("seq beyond MaxSeq should fail")
	}
	bad := *c
	bad.Heads = 7 // does not divide hidden
	if _, err := BuildPrefill(&bad, 1, 512, AttnEager); err == nil {
		t.Error("invalid config should fail")
	}
}

func TestByNameAndModelNames(t *testing.T) {
	for _, name := range ModelNames() {
		c, err := ByName(name)
		if err != nil {
			t.Errorf("ByName(%q): %v", name, err)
			continue
		}
		if c.Name != name {
			t.Errorf("ByName(%q).Name = %q", name, c.Name)
		}
	}
	if _, err := ByName("gpt5"); err == nil {
		t.Error("unknown model should fail")
	}
	if len(TableIIIModels()) != 4 {
		t.Error("Table III has 4 workloads")
	}
	if len(FusionStudyModels()) != 3 {
		t.Error("fusion study has 3 models")
	}
}

func TestFLOPsScaleLinearlyWithBatch(t *testing.T) {
	f := func(bs uint8) bool {
		b := int64(bs%8) + 1
		g1, err1 := BuildPrefill(GPT2(), 1, 128, AttnEager)
		gb, err2 := BuildPrefill(GPT2(), b, 128, AttnEager)
		if err1 != nil || err2 != nil {
			return false
		}
		// Attention FLOPs are quadratic in seq but linear in batch; the
		// whole graph is linear in batch.
		ratio := gb.TotalCost().FLOPs / g1.TotalCost().FLOPs
		return ratio > float64(b)*0.99 && ratio < float64(b)*1.01
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestAttentionFLOPsQuadraticInSeq(t *testing.T) {
	g1, _ := BuildPrefill(BertBaseUncased(), 1, 128, AttnEager)
	g2, _ := BuildPrefill(BertBaseUncased(), 1, 256, AttnEager)
	// Doubling seq more than doubles FLOPs (attention quadratic term).
	ratio := g2.TotalCost().FLOPs / g1.TotalCost().FLOPs
	if ratio <= 2.0 {
		t.Errorf("seq-doubling FLOP ratio = %.2f, want > 2 (quadratic attention)", ratio)
	}
}

func TestKindAndEnumStrings(t *testing.T) {
	if Encoder.String() != "encoder-only" || Decoder.String() != "decoder-only" {
		t.Error("Kind strings")
	}
	if AttnEager.String() != "eager" || AttnFlash.String() != "flash_attention_2" {
		t.Error("AttnImpl strings")
	}
	if !strings.Contains(GPT2().String(), "gpt2") {
		t.Error("Config.String should include name")
	}
}

func TestGraphNameEncodesRun(t *testing.T) {
	g, _ := BuildPrefill(GPT2(), 4, 512, AttnFlash)
	for _, part := range []string{"gpt2", "bs4", "sl512", "flash"} {
		if !strings.Contains(g.Name, part) {
			t.Errorf("graph name %q missing %q", g.Name, part)
		}
	}
}

func TestInputOutputBytes(t *testing.T) {
	g, _ := BuildPrefill(Llama32_1B(), 2, 512, AttnEager)
	if g.InputBytes <= 0 || g.OutputBytes <= 0 {
		t.Error("graph IO volumes must be positive")
	}
	// Decoder output: next-token logits over vocab.
	if want := float64(2 * 128256 * 2); g.OutputBytes != want {
		t.Errorf("OutputBytes = %g, want %g", g.OutputBytes, want)
	}
}
