package models

import (
	"strings"
	"testing"

	"github.com/skipsim/skip/internal/ops"
)

func TestDecodeStepAllDecoderFamilies(t *testing.T) {
	// Every decoder family must build a valid single-token step:
	// GPT-2 (learned positions, tanh GELU), Llama (RoPE, SiLU gate,
	// GQA), Gemma (RoPE, GELU gate, MQA).
	for _, cfg := range []*Config{GPT2(), Llama32_1B(), Gemma2B(), Mistral7B()} {
		g, err := BuildDecodeStep(cfg, 2, 512, AttnEager)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if g.KernelCount() == 0 {
			t.Errorf("%s: empty decode step", cfg.Name)
		}
		// A decode step launches a similar order of kernels to a prefill
		// layer walk — the same per-layer structure with single-token
		// shapes.
		prefill, err := BuildPrefill(cfg, 2, 512, AttnEager)
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(g.KernelCount()) / float64(prefill.KernelCount())
		if ratio < 0.5 || ratio > 1.5 {
			t.Errorf("%s: decode/prefill kernel ratio = %.2f", cfg.Name, ratio)
		}
		// But with far less work per kernel.
		if g.TotalCost().FLOPs >= prefill.TotalCost().FLOPs/10 {
			t.Errorf("%s: decode FLOPs should be tiny next to prefill", cfg.Name)
		}
	}
}

func TestDecodeStepFlash(t *testing.T) {
	eager, err := BuildDecodeStep(Llama32_1B(), 1, 1024, AttnEager)
	if err != nil {
		t.Fatal(err)
	}
	flash, err := BuildDecodeStep(Llama32_1B(), 1, 1024, AttnFlash)
	if err != nil {
		t.Fatal(err)
	}
	if flash.KernelCount() >= eager.KernelCount() {
		t.Errorf("flash decode (%d kernels) should launch fewer than eager (%d)",
			flash.KernelCount(), eager.KernelCount())
	}
	var found bool
	for _, k := range flash.FlattenKernels() {
		if strings.Contains(k.Name, "flash_fwd_splitkv") {
			found = true
			if k.Class != ops.ClassAttention {
				t.Error("split-kv kernel class")
			}
		}
	}
	if !found {
		t.Error("flash decode should use the split-kv kernel")
	}
}

func TestDecodeStepScalesWithKV(t *testing.T) {
	short, _ := BuildDecodeStep(Llama32_1B(), 1, 128, AttnEager)
	long, _ := BuildDecodeStep(Llama32_1B(), 1, 8192, AttnEager)
	// Attention cache streaming grows with kvLen; weight reads dominate
	// but total bytes must strictly grow.
	if long.TotalCost().Bytes() <= short.TotalCost().Bytes() {
		t.Error("decode bytes should grow with KV length")
	}
	// Kernel count is kv-invariant (same op structure).
	if long.KernelCount() != short.KernelCount() {
		t.Errorf("decode kernel count changed with kvLen: %d vs %d",
			short.KernelCount(), long.KernelCount())
	}
}

func TestDecodeStepNamesEncodeRun(t *testing.T) {
	g, _ := BuildDecodeStep(GPT2(), 4, 256, AttnEager)
	for _, part := range []string{"gpt2", "decode", "bs4", "kv256"} {
		if !strings.Contains(g.Name, part) {
			t.Errorf("graph name %q missing %q", g.Name, part)
		}
	}
	// One token per sequence in, one logit row out.
	if g.InputBytes != 4*8 {
		t.Errorf("InputBytes = %g", g.InputBytes)
	}
	if g.OutputBytes != float64(4*50257*2) {
		t.Errorf("OutputBytes = %g", g.OutputBytes)
	}
}

func TestDecodeStepKVAppend(t *testing.T) {
	// The cache-append copies must be present (cat kernels).
	g, _ := BuildDecodeStep(Llama32_1B(), 1, 512, AttnEager)
	cats := 0
	for _, k := range g.FlattenKernels() {
		if strings.Contains(k.Name, "CatArrayBatchedCopy") {
			cats++
		}
	}
	// ≥2 per layer (k and v appends); RoPE adds more cats.
	if cats < int(2*Llama32_1B().Layers) {
		t.Errorf("cat kernels = %d, want ≥ %d", cats, 2*Llama32_1B().Layers)
	}
}
