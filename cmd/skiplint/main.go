// Command skiplint enforces the skip simulator's determinism contract
// statically: a seeded run must be bit-identical across reruns, worker
// counts, and refactors, so the bug classes that break that — wall
// clocks, the global rand source, map-ordered output, unsupervised
// goroutines, map-ordered float sums — are rejected at review time
// instead of surfacing as golden-test diffs.
//
// Usage:
//
//	skiplint [-checks walltime,globalrand,...] [-list] [package ...]
//
// Packages are directories or "./..."-style patterns (default "./...",
// which follows the go tool's conventions and skips testdata). Exit
// status is 0 when clean, 1 when any diagnostic fires, 2 on usage or
// load errors.
//
// Intentional exceptions carry a reviewed waiver in source:
//
//	//skiplint:allow <check> — <reason>
//
// on the flagged line or the line above it. The reason is mandatory,
// unknown check names are errors, and a directive that no longer
// suppresses anything is reported as stale.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/skipsim/skip/internal/analysis"
)

func main() {
	os.Exit(run())
}

func run() int {
	flags := flag.NewFlagSet("skiplint", flag.ExitOnError)
	checks := flags.String("checks", "", "comma-separated checks to run (default: all)")
	list := flags.Bool("list", false, "list registered checks and exit")
	flags.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: skiplint [-checks a,b,...] [-list] [package ...]")
		flags.PrintDefaults()
	}
	flags.Parse(os.Args[1:])

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	selected, err := analysis.Select(*checks)
	if err != nil {
		fmt.Fprintln(os.Stderr, "skiplint:", err)
		return 2
	}

	patterns := flags.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "skiplint:", err)
		return 2
	}
	pkgs, err := analysis.NewLoader().LoadPatterns(cwd, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "skiplint:", err)
		return 2
	}

	diags, err := analysis.Run(pkgs, selected, analysis.DefaultScopes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "skiplint:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "skiplint: %d finding(s) across %d package(s)\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}
