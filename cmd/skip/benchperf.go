package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	skip "github.com/skipsim/skip"
)

// cmdBenchPerf replays a canonical 8-instance heterogeneous fleet with
// the windowed timeline enabled and self-profiling on, then writes the
// simulator's own performance figures (events/sec, allocs/event) to a
// flat JSON file — the raw-speed trajectory ROADMAP item 4 tracks
// across PRs. The simulated workload is fully seeded, so the simulated
// numbers are bit-stable; only the wall-clock figures vary by machine.
func cmdBenchPerf(args []string) error {
	fs := flag.NewFlagSet("bench-perf", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "CI smoke sizing: 200 requests instead of 2000")
	out := fs.String("o", "BENCH_perf.json", "write the perf figures to this JSON file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	const (
		fleetDesc  = "GH200:4,Intel+H100:4"
		model      = "llama-3.2-1B"
		intervalMs = 250.0
	)
	requests := 2000
	if *quick {
		requests = 200
	}
	sp := &skip.Spec{
		Model: model,
		Workload: &skip.WorkloadSpec{
			Scenario: "chat", Requests: requests, RatePerSec: 120, Seed: 42,
		},
		Serve: &skip.ServeSpec{
			MaxBatch:  16,
			Seq:       512,
			TTFTSLOMs: 500,
		},
		Fleet: &skip.FleetSpec{
			Groups: []skip.FleetGroupSpec{
				{Platform: skip.GH200, Count: 4},
				{Platform: skip.IntelH100, Count: 4},
			},
			Router: "least-queue",
		},
		Observability: &skip.ObservabilitySpec{
			Timeline: &skip.TimelineSpec{IntervalMs: intervalMs},
		},
	}

	rep, err := skip.Simulate(sp, skip.WithProfile())
	if err != nil {
		return err
	}
	p, tl, st := rep.Profile, rep.Timeline, rep.Cluster

	expected := int(math.Ceil(float64(st.Horizon) / (intervalMs * 1e6)))
	if expected < 1 {
		expected = 1
	}
	result := map[string]any{
		"fleet":            fleetDesc,
		"model":            model,
		"requests":         requests,
		"quick":            *quick,
		"completed":        st.Completed,
		"simulated_ms":     float64(p.SimulatedNs) / 1e6,
		"wall_ms":          float64(p.WallNs) / 1e6,
		"events":           p.Events,
		"events_per_sec":   p.EventsPerSec,
		"mallocs":          p.Mallocs,
		"allocs_per_event": p.AllocsPerEvent,
		"alloc_bytes":      p.AllocBytes,
		"heap_alloc_bytes": p.HeapAllocBytes,
		"timeline_windows": tl.Windows,
		"expected_windows": expected,
	}
	data, err := json.MarshalIndent(result, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}

	fmt.Printf("bench-perf: %s / %s  %d requests (%d completed)\n",
		fleetDesc, model, requests, st.Completed)
	fmt.Printf("  simulated %v in wall %v  (%.0fx real time)\n",
		time.Duration(p.SimulatedNs).Round(time.Millisecond),
		time.Duration(p.WallNs).Round(time.Microsecond),
		ratio(float64(p.SimulatedNs), float64(p.WallNs)))
	fmt.Printf("  %d events  %.0f events/s  %.1f allocs/event\n",
		p.Events, p.EventsPerSec, p.AllocsPerEvent)
	fmt.Printf("  timeline %d windows at %gms (expected %d)\n", tl.Windows, intervalMs, expected)
	fmt.Printf("written to %s\n", *out)
	return nil
}
