package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	skip "github.com/skipsim/skip"
)

// cmdSim runs a declarative experiment spec: `skip sim -spec
// experiment.json`. The run/serve/cluster subcommands build the same
// Spec from flags; sim loads it from disk, so a spec file is the
// complete, shareable description of an experiment.
func cmdSim(args []string) error {
	fs := flag.NewFlagSet("sim", flag.ContinueOnError)
	specPath := fs.String("spec", "", "experiment spec file (JSON; see `skip sim -h` and README)")
	events := fs.Bool("events", false, "stream simulation events (arrival/routed/admitted/…) to stdout")
	jsonOut := fs.Bool("json", false, "print the unified report as JSON (stable field order; times in virtual ns) instead of text")
	out := fs.String("o", "", "run specs: write the trace to this Chrome-trace JSON file")
	traceOut := fs.String("trace-out", "", "serve/fleet specs: write the per-request span timeline to this Chrome-trace JSON file (Perfetto-loadable)")
	eventsOut := fs.String("events-out", "", "serve/fleet specs: write the event stream to this file as JSON lines (one event per line, Seq-numbered)")
	cfK := fs.Int("counterfactual-k", 0, "fleet specs: record every routing decision with up to K scored alternatives plus counterfactual policy replays (overrides observability.counterfactual_k)")
	metricsCSV := fs.String("metrics-csv", "", "write the report.metrics series to this CSV file (one row per sweep point; needs a report.metrics section)")
	timelineCSV := fs.String("timeline-csv", "", "write the windowed Report.Timeline series to this CSV file (one row per window; needs an observability.timeline section)")
	profile := fs.Bool("profile", false, "measure the simulator itself (wall time, events/sec, allocs/event) and print the Report.Profile block")
	cpuprofile := fs.String("cpuprofile", "", "write a pprof CPU profile of the simulation to this file")
	memprofile := fs.String("memprofile", "", "write a pprof heap profile (taken after the simulation) to this file")
	progress := fs.Bool("progress", false, "print a heartbeat to stderr at every progress tick: wall time, simulated time, live events/sec")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *specPath == "" {
		return fmt.Errorf("sim: -spec is required")
	}
	sp, err := skip.LoadSpec(*specPath)
	if err != nil {
		return err
	}
	if *cfK != 0 {
		if sp.Observability == nil {
			sp.Observability = &skip.ObservabilitySpec{}
		}
		sp.Observability.CounterfactualK = *cfK
	}

	// Run documents emit no lifecycle events — swept or not (run is
	// mutually exclusive with serve/fleet, so sp.Run identifies a
	// run-kind sweep too).
	isRun := sp.Kind() == skip.KindRun || sp.Run != nil
	// Every event consumer shares one observer; with -json, stdout must
	// stay one parseable document, so status and streamed events move to
	// stderr.
	statusOut := os.Stdout
	if *jsonOut {
		statusOut = os.Stderr
	}
	var observers []skip.Observer
	if *events {
		if isRun {
			return fmt.Errorf("sim: -events needs a serve or fleet spec (run specs emit no lifecycle events)")
		}
		observers = append(observers, func(e skip.Event) {
			fmt.Fprintln(statusOut, "  event:", e)
		})
	}
	var encErr error
	if *eventsOut != "" {
		if isRun {
			return fmt.Errorf("sim: -events-out needs a serve or fleet spec (run specs emit no lifecycle events)")
		}
		f, err := os.Create(*eventsOut)
		if err != nil {
			return err
		}
		defer f.Close()
		enc := json.NewEncoder(f)
		observers = append(observers, func(e skip.Event) {
			if err := enc.Encode(e); err != nil && encErr == nil {
				encErr = fmt.Errorf("sim: writing %s: %w", *eventsOut, err)
			}
		})
	}
	var tb *skip.TimelineBuilder
	if *traceOut != "" {
		switch sp.Kind() {
		case skip.KindServe, skip.KindCluster, skip.KindDisagg:
		default:
			return fmt.Errorf("sim: -trace-out needs a serve or fleet spec (request ids repeat across sweep points; use -o for run traces)")
		}
		tb = skip.NewTimelineBuilder()
		observers = append(observers, tb.Observe)
	}
	if *progress {
		if isRun {
			return fmt.Errorf("sim: -progress needs a serve or fleet spec (run specs emit no lifecycle events)")
		}
		start := time.Now()
		var seen int64
		observers = append(observers, func(e skip.Event) {
			seen++
			if e.Type != skip.EventProgress {
				return
			}
			wall := time.Since(start)
			eps := float64(seen) / wall.Seconds()
			fmt.Fprintf(os.Stderr, "progress: %d/%d completed  wall %v  simulated %v  %.0f events/s\n",
				e.Completed, e.Total, wall.Round(time.Millisecond), e.Time, eps)
		})
	}
	var opts []skip.SimOption
	if len(observers) > 0 {
		opts = append(opts, skip.WithObserver(func(e skip.Event) {
			for _, fn := range observers {
				fn(e)
			}
		}))
	}
	if *profile {
		opts = append(opts, skip.WithProfile())
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	rep, err := skip.Simulate(sp, opts...)
	if err != nil {
		return err
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return err
		}
		fmt.Fprintf(statusOut, "heap profile written to %s\n", *memprofile)
	}
	if encErr != nil {
		return encErr
	}
	if *jsonOut {
		data, err := skip.ReportJSON(rep)
		if err != nil {
			return err
		}
		os.Stdout.Write(data)
	} else {
		printReport(sp, rep)
	}

	if tb != nil {
		if err := tb.Reconcile(); err != nil {
			return err
		}
		if err := tb.Trace().SaveFile(*traceOut); err != nil {
			return err
		}
		fmt.Fprintf(statusOut, "request timeline written to %s (%d requests)\n",
			*traceOut, len(tb.Timelines()))
	}
	if *eventsOut != "" {
		fmt.Fprintf(statusOut, "event stream written to %s\n", *eventsOut)
	}
	if *metricsCSV != "" {
		if err := writeMetricsCSV(*metricsCSV, rep); err != nil {
			return err
		}
		fmt.Fprintf(statusOut, "metrics written to %s\n", *metricsCSV)
	}
	if *timelineCSV != "" {
		if err := writeTimelineCSV(*timelineCSV, rep); err != nil {
			return err
		}
		fmt.Fprintf(statusOut, "timeline written to %s (%d windows)\n", *timelineCSV, rep.Timeline.Windows)
	}
	if *profile && !*jsonOut {
		printProfile(rep.Profile)
	}
	if *out != "" {
		tr := traceOf(rep)
		if tr == nil {
			return fmt.Errorf("sim: -o needs a run spec (serve/cluster reports carry no trace)")
		}
		if err := tr.SaveFile(*out); err != nil {
			return err
		}
		fmt.Fprintf(statusOut, "trace written to %s\n", *out)
	}
	return nil
}

func traceOf(rep *skip.Report) *skip.Trace {
	switch {
	case rep.Run != nil:
		return rep.Run.Trace
	case rep.Generate != nil:
		return rep.Generate.Trace
	}
	return nil
}

// printReport renders a unified Report; every front door (sim, run,
// generate, serve, cluster) funnels through it.
func printReport(sp *skip.Spec, rep *skip.Report) {
	switch rep.Kind {
	case skip.KindRun:
		if rep.Generate != nil {
			printGenerate(sp, rep.Generate)
		} else {
			printRun(rep.Run)
		}
	case skip.KindServe:
		printServeReport(sp, rep)
	case skip.KindCluster:
		printClusterReport(sp, rep)
	case skip.KindDisagg:
		printDisaggReport(sp, rep)
	case skip.KindSweep:
		printSweepReport(sp, rep)
	}
	printMetrics(rep.Metrics)
}

// writeMetricsCSV exports the derived metric series as CSV: one column
// per metric, one row per sweep point (a single row for plain runs).
// Sweep reports lead with a column for the swept field's value, so the
// file is directly plottable against the sweep axis.
func writeMetricsCSV(path string, rep *skip.Report) error {
	if len(rep.Metrics) == 0 {
		return fmt.Errorf("sim: -metrics-csv needs a report.metrics section in the spec")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	var header []string
	if rep.SweepField != "" {
		header = append(header, rep.SweepField)
	}
	for _, m := range rep.Metrics {
		header = append(header, m.Name)
	}
	if err := w.Write(header); err != nil {
		return err
	}
	// All series should be one value per sweep point, but a metric over
	// a section some points lack can come up short — write the common
	// prefix rather than panicking past a short series.
	rows := len(rep.Metrics[0].Values)
	for _, m := range rep.Metrics[1:] {
		if len(m.Values) < rows {
			rows = len(m.Values)
		}
	}
	for i := 0; i < rows; i++ {
		var row []string
		if rep.SweepField != "" && i < len(rep.Sweep) {
			row = append(row, fmt.Sprintf("%v", rep.Sweep[i].Value))
		}
		for _, m := range rep.Metrics {
			row = append(row, strconv.FormatFloat(m.Values[i], 'g', -1, 64))
		}
		if err := w.Write(row); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}

// writeTimelineCSV exports the windowed timeline as CSV: one row per
// window, leading with the window index and its start time, then every
// fleet series, then every per-instance series as "<instance>.<name>"
// columns.
func writeTimelineCSV(path string, rep *skip.Report) error {
	tl := rep.Timeline
	if tl == nil {
		return fmt.Errorf("sim: -timeline-csv needs an observability.timeline section in the spec")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	header := []string{"window", "t_ms"}
	cols := make([][]float64, 0, len(tl.Fleet))
	for _, s := range tl.Fleet {
		header = append(header, s.Name)
		cols = append(cols, s.Values)
	}
	for _, in := range tl.Instances {
		for _, s := range in.Series {
			header = append(header, in.Instance+"."+s.Name)
			cols = append(cols, s.Values)
		}
	}
	if err := w.Write(header); err != nil {
		return err
	}
	for i := 0; i < tl.Windows; i++ {
		row := make([]string, 0, len(cols)+2)
		row = append(row, strconv.Itoa(i),
			strconv.FormatFloat(float64(i)*tl.IntervalMs, 'g', -1, 64))
		for _, c := range cols {
			v := 0.0
			if i < len(c) {
				v = c[i]
			}
			row = append(row, strconv.FormatFloat(v, 'g', -1, 64))
		}
		if err := w.Write(row); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}

// printProfile renders the simulator's self-measurement block.
func printProfile(p *skip.SimProfile) {
	if p == nil {
		return
	}
	fmt.Println()
	fmt.Println("  simulator profile")
	wall := time.Duration(p.WallNs)
	fmt.Printf("    wall time      %v  (simulated %v, %.0fx real time)\n",
		wall.Round(time.Microsecond), time.Duration(p.SimulatedNs), ratio(float64(p.SimulatedNs), float64(p.WallNs)))
	fmt.Printf("    events         %d  (%.0f events/s)\n", p.Events, p.EventsPerSec)
	fmt.Printf("    allocations    %d (%.1f MB total, %.1f/event)  heap now %.1f MB\n",
		p.Mallocs, float64(p.AllocBytes)/1e6, p.AllocsPerEvent, float64(p.HeapAllocBytes)/1e6)
}

func ratio(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}

// printMetrics renders the derived series a report.metrics section
// selected — one row per metric, all sweep points on the row.
func printMetrics(metrics []skip.Metric) {
	if len(metrics) == 0 {
		return
	}
	fmt.Println()
	fmt.Println("  derived metrics")
	for _, m := range metrics {
		vals := make([]string, len(m.Values))
		for i, v := range m.Values {
			vals[i] = fmt.Sprintf("%.6g", v)
		}
		fmt.Printf("    %-28s %s\n", m.Name, strings.Join(vals, " "))
	}
}

// printSweepReport renders a sweep series as one table, one row per
// swept value, with columns chosen by the points' layer. Full
// per-point reports are available via -json.
func printSweepReport(sp *skip.Spec, rep *skip.Report) {
	if len(rep.Sweep) == 0 {
		return
	}
	inner := rep.Sweep[0].Report
	hwLabel := platformLabel(sp)
	if sp.Fleet != nil {
		var groups []string
		for _, g := range sp.Fleet.Groups {
			desc := fmt.Sprintf("%s:%d", g.Platform, g.Count)
			if g.Role != "" {
				desc += "/" + g.Role
			}
			groups = append(groups, desc)
		}
		hwLabel = "fleet " + strings.Join(groups, ",")
	}
	wlLabel := workloadLabel(sp.Workload)
	// When the swept field is the very one a header label echoes, the
	// label would show the base document's placeholder for every row —
	// mark it swept instead of mislabeling the series.
	switch {
	case rep.SweepField == "platform" || rep.SweepField == "platform_file",
		strings.HasPrefix(rep.SweepField, "fleet.groups"):
		hwLabel += " (swept)"
	case rep.SweepField == "workload.scenario" || rep.SweepField == "workload.trace_file",
		rep.SweepField == "workload.rate_per_sec" && sp.Workload != nil &&
			sp.Workload.Scenario == "" && sp.Workload.TraceFile == "" && sp.Workload.Arrival != "uniform",
		rep.SweepField == "workload.interval_ms" && sp.Workload != nil && sp.Workload.Arrival == "uniform":
		wlLabel += " (swept)"
	}
	fmt.Printf("sweep %s over %d points  (%s: %s / %s, workload=%s)\n",
		rep.SweepField, len(rep.Sweep), inner.Kind,
		hwLabel, sp.Model, wlLabel)
	// Table values round to 6 significant digits — a log-spaced range
	// point is 0.1, not 0.10000000000000002; -json keeps full precision.
	val := func(pt skip.SweepPoint) string {
		if f, ok := pt.Value.(float64); ok {
			return fmt.Sprintf("%.6g", f)
		}
		return fmt.Sprintf("%v", pt.Value)
	}
	switch inner.Kind {
	case skip.KindRun:
		// run.new_tokens can itself be swept across zero, so the series
		// may mix prefill-only points (Report.Run) with generate points
		// (Report.Generate) — choose per point, not from point 0.
		fmt.Printf("  %14s %14s %14s %14s\n", "value", "TTFT", "TPOT", "total")
		for _, pt := range rep.Sweep {
			if g := pt.Report.Generate; g != nil {
				fmt.Printf("  %14s %14v %14v %14v\n", val(pt), g.TTFT, g.TPOT, g.Total)
			} else {
				r := pt.Report.Run
				fmt.Printf("  %14s %14v %14s %14v\n", val(pt), r.TTFT, "-", r.TTFT)
			}
		}
	case skip.KindServe:
		fmt.Printf("  %14s %12s %12s %12s %9s %9s %7s\n",
			"value", "P50 TTFT", "P95 TTFT", "P95 E2E", "tok/s", "goodput", "SLO")
		for _, pt := range rep.Sweep {
			st := pt.Report.Serve
			fmt.Printf("  %14s %12v %12v %12v %9.0f %9.1f %6.0f%%\n",
				val(pt), st.P50TTFT, st.P95TTFT, st.P95E2E,
				st.TokensPerSec, st.Goodput, st.SLOAttainment*100)
		}
	case skip.KindCluster:
		fmt.Printf("  %14s %12s %12s %12s %9s %9s %8s\n",
			"value", "P95 TTFT", "P50 TPOT", "P95 E2E", "tok/s", "goodput", "rejected")
		for _, pt := range rep.Sweep {
			st := pt.Report.Cluster
			fmt.Printf("  %14s %12v %12v %12v %9.0f %9.1f %8d\n",
				val(pt), st.P95TTFT, st.P50TPOT, st.P95E2E,
				st.TokensPerSec, st.Goodput, st.Rejected)
		}
	case skip.KindDisagg:
		fmt.Printf("  %14s %12s %12s %12s %9s %10s %12s\n",
			"value", "P95 TTFT", "P95 E2E", "goodput", "transfers", "wire mean", "stall mean")
		for _, pt := range rep.Sweep {
			st := pt.Report.Disagg
			fmt.Printf("  %14s %12v %12v %12.1f %9d %10v %12v\n",
				val(pt), st.P95TTFT, st.P95E2E, st.Goodput,
				st.Transfers, st.MeanTransfer, st.MeanTransferStall)
		}
	}
}

// platformLabel names the spec's platform for report headers; specs
// using platform_file show the file reference.
func platformLabel(sp *skip.Spec) string {
	if sp.PlatformFile != "" {
		return "file:" + sp.PlatformFile
	}
	return sp.Platform
}

// workloadLabel names the spec's request stream for report headers.
func workloadLabel(w *skip.WorkloadSpec) string {
	switch {
	case w == nil:
		return "none"
	case w.TraceFile != "":
		return "trace:" + w.TraceFile
	case w.Scenario != "":
		return w.Scenario
	case w.Arrival == "uniform":
		return fmt.Sprintf("uniform every %gms", w.IntervalMs)
	default:
		return fmt.Sprintf("poisson %g req/s", w.RatePerSec)
	}
}

func printServeReport(sp *skip.Spec, rep *skip.Report) {
	stats := rep.Serve
	policy := "continuous"
	var sloSet, continuous bool
	if sp.Serve != nil && sp.Serve.Policy != "" {
		policy = sp.Serve.Policy
	}
	if sp.Serve != nil {
		sloSet = sp.Serve.TTFTSLOMs > 0
	}
	p, _ := skip.ParseServePolicy(policy)
	continuous = p == skip.ContinuousBatch || p == skip.ChunkedPrefill

	fmt.Printf("%s / %s  policy=%s workload=%s  %d requests\n",
		platformLabel(sp), sp.Model, policy, workloadLabel(sp.Workload), rep.Offered)
	fmt.Printf("  mean batch   %.1f over %d iterations\n", stats.MeanBatch, stats.Batches)
	fmt.Printf("  TTFT         mean %v  P50 %v  P95 %v  P99 %v  max %v\n",
		stats.MeanTTFT, stats.P50TTFT, stats.P95TTFT, stats.P99TTFT, stats.MaxTTFT)
	if continuous {
		fmt.Printf("  TPOT         mean %v  P50 %v  P95 %v\n",
			stats.MeanTPOT, stats.P50TPOT, stats.P95TPOT)
		fmt.Printf("  E2E          mean %v  P50 %v  P95 %v  max %v\n",
			stats.MeanE2E, stats.P50E2E, stats.P95E2E, stats.MaxE2E)
		fmt.Printf("  KV cache     peak %.1f%% of %.1f GB budget  (time-weighted mean %.1f%%)\n",
			stats.PeakKVFrac*100, stats.KVCapacityBytes/1e9, stats.MeanKVFrac*100)
		printKVCache(stats.KVCache)
		fmt.Printf("  tokens       %.0f tok/s\n", stats.TokensPerSec)
		if stats.Preemptions > 0 || stats.Abandoned > 0 {
			fmt.Printf("  pressure     %d preemptions, %d abandoned, max queue %d\n",
				stats.Preemptions, stats.Abandoned, stats.MaxQueueDepth)
		}
	}
	fmt.Printf("  throughput   %.1f req/s", stats.Throughput)
	if sloSet {
		fmt.Printf("  (goodput %.1f req/s, %.0f%% in SLO)", stats.Goodput, stats.SLOAttainment*100)
	}
	fmt.Println()
}

func printClusterReport(sp *skip.Spec, rep *skip.Report) {
	stats := rep.Cluster
	var fleetDesc []string
	for _, g := range sp.Fleet.Groups {
		fleetDesc = append(fleetDesc, fmt.Sprintf("%s:%d", g.Platform, g.Count))
	}
	fmt.Printf("fleet %s  model=%s router=%s workload=%s  %d requests\n",
		strings.Join(fleetDesc, ","), sp.Model, stats.RouterPolicy,
		workloadLabel(sp.Workload), rep.Offered)
	fmt.Printf("  ledger       %d offered = %d rejected + %d unroutable + %d routed (%d completed, %d abandoned, %d preempted)\n",
		stats.Offered, stats.Rejected, stats.Unroutable, stats.Routed,
		stats.Completed, stats.Abandoned, stats.Preemptions)
	fmt.Printf("  TTFT         mean %v  P50 %v  P95 %v  P99 %v  max %v\n",
		stats.MeanTTFT, stats.P50TTFT, stats.P95TTFT, stats.P99TTFT, stats.MaxTTFT)
	fmt.Printf("  TPOT         mean %v  P50 %v  P95 %v\n", stats.MeanTPOT, stats.P50TPOT, stats.P95TPOT)
	fmt.Printf("  E2E          mean %v  P50 %v  P95 %v  max %v\n",
		stats.MeanE2E, stats.P50E2E, stats.P95E2E, stats.MaxE2E)
	fmt.Printf("  throughput   %.1f req/s  (%.0f tok/s)", stats.Throughput, stats.TokensPerSec)
	if sp.Serve != nil && sp.Serve.TTFTSLOMs > 0 {
		fmt.Printf("  goodput %.1f req/s, %.0f%% in SLO", stats.Goodput, stats.SLOAttainment*100)
	}
	fmt.Println()
	fmt.Printf("  imbalance    %.3f (CV of per-instance routed counts)\n", stats.LoadImbalance)
	printKVCache(stats.KVCache)
	printChaos(stats.Chaos)
	printRouting("routing", stats.Routing)
	fmt.Println()

	fmt.Printf("  %-16s %7s %7s %12s %12s %9s %8s %8s\n",
		"instance", "routed", "done", "P95 TTFT", "P95 E2E", "tok/s", "peak KV", "preempt")
	for _, is := range stats.Instances {
		fmt.Printf("  %-16s %7d %7d %12v %12v %9.0f %7.1f%% %8d\n",
			is.Name, is.Routed, is.Serve.Completed,
			is.Serve.P95TTFT, is.Serve.P95E2E, is.Serve.TokensPerSec,
			is.Serve.PeakKVFrac*100, is.Serve.Preemptions)
	}

	sloSet := sp.Serve != nil && sp.Serve.TTFTSLOMs > 0
	shares := make([]platformShare, len(stats.Instances))
	for i, is := range stats.Instances {
		shares[i] = platformShare{
			platform: is.Platform, placed: is.Routed, done: is.Serve.Completed,
			tokps: is.Serve.TokensPerSec, slo: is.Serve.SLOAttainment,
		}
	}
	printPlatformBreakdown(sloSet, shares)
}

// platformShare is one instance's contribution to the per-platform
// breakdown.
type platformShare struct {
	platform string
	placed   int
	done     int
	tokps    float64
	slo      float64
}

// printPlatformBreakdown aggregates the per-instance table by platform —
// the heterogeneous-fleet view: which hardware carried the load, and how
// each platform class fared against the TTFT SLO. Single-platform fleets
// skip it (the instance table above already is the breakdown); the SLO
// column is the per-instance attainment weighted by completions.
func printPlatformBreakdown(sloSet bool, shares []platformShare) {
	type row struct {
		inst, placed, done int
		tokps, sloW        float64
		sloN               int
	}
	var order []string
	agg := make(map[string]*row)
	for _, sh := range shares {
		r := agg[sh.platform]
		if r == nil {
			r = &row{}
			agg[sh.platform] = r
			order = append(order, sh.platform)
		}
		r.inst++
		r.placed += sh.placed
		r.done += sh.done
		r.tokps += sh.tokps
		r.sloW += sh.slo * float64(sh.done)
		r.sloN += sh.done
	}
	if len(order) < 2 {
		return
	}
	fmt.Println()
	hdr := fmt.Sprintf("  %-16s %5s %7s %7s %9s", "platform", "inst", "placed", "done", "tok/s")
	if sloSet {
		hdr += fmt.Sprintf(" %8s", "SLO")
	}
	fmt.Println(hdr)
	for _, p := range order {
		r := agg[p]
		line := fmt.Sprintf("  %-16s %5d %7d %7d %9.0f", p, r.inst, r.placed, r.done, r.tokps)
		if sloSet {
			slo := 0.0
			if r.sloN > 0 {
				slo = r.sloW / float64(r.sloN)
			}
			line += fmt.Sprintf(" %7.0f%%", slo*100)
		}
		fmt.Println(line)
	}
}

// printRouting renders the decision-record summary a -counterfactual-k
// (or observability.counterfactual_k) run carries; full per-decision
// records are available via -json.
func printRouting(label string, r *skip.RoutingStats) {
	if r == nil {
		return
	}
	fmt.Printf("  %-12s %d picks under %s (top-%d alternatives recorded)\n",
		label, r.Picks, r.Policy, r.K)
	for _, cf := range r.Counterfactuals {
		pct := 0.0
		if cf.Picks > 0 {
			pct = 100 * float64(cf.Differed) / float64(cf.Picks)
		}
		fmt.Printf("    %-16s would have placed %d/%d picks differently (%.0f%%)\n",
			cf.Policy, cf.Differed, cf.Picks, pct)
	}
}

func printDisaggReport(sp *skip.Spec, rep *skip.Report) {
	stats := rep.Disagg
	var fleetDesc []string
	for _, g := range sp.Fleet.Groups {
		role := g.Role
		if role == "" {
			role = "both"
		}
		fleetDesc = append(fleetDesc, fmt.Sprintf("%s:%d/%s", g.Platform, g.Count, role))
	}
	fmt.Printf("disagg fleet %s  model=%s prefill-router=%s decode-router=%s workload=%s  %d requests\n",
		strings.Join(fleetDesc, ","), sp.Model, stats.PrefillPolicy, stats.DecodePolicy,
		workloadLabel(sp.Workload), rep.Offered)
	fmt.Printf("  ledger       %d offered = %d rejected + %d unroutable + %d routed\n",
		stats.Offered, stats.Rejected, stats.Unroutable, stats.Routed)
	fmt.Printf("  handoffs     %d handed off = %d resumed + %d dropped  (%d completed, %d abandoned, %d preempted)\n",
		stats.HandedOff, stats.Resumed, stats.TransferDrops,
		stats.Completed, stats.Abandoned, stats.Preemptions)
	fmt.Printf("  KV transfer  %d transfers, %.2f GB moved  wire mean %v max %v  stall mean %v\n",
		stats.Transfers, stats.KVBytesMoved/1e9,
		stats.MeanTransfer, stats.MaxTransfer, stats.MeanTransferStall)
	fmt.Printf("  TTFT         mean %v  P50 %v  P95 %v  P99 %v  max %v\n",
		stats.MeanTTFT, stats.P50TTFT, stats.P95TTFT, stats.P99TTFT, stats.MaxTTFT)
	fmt.Printf("  TPOT         mean %v  P50 %v  P95 %v\n", stats.MeanTPOT, stats.P50TPOT, stats.P95TPOT)
	fmt.Printf("  E2E          mean %v  P50 %v  P95 %v  max %v\n",
		stats.MeanE2E, stats.P50E2E, stats.P95E2E, stats.MaxE2E)
	fmt.Printf("  throughput   %.1f req/s  (%.0f tok/s)", stats.Throughput, stats.TokensPerSec)
	if sp.Serve != nil && sp.Serve.TTFTSLOMs > 0 {
		fmt.Printf("  goodput %.1f req/s, %.0f%% in SLO", stats.Goodput, stats.SLOAttainment*100)
	}
	fmt.Println()
	fmt.Printf("  imbalance    %.3f (CV of per-instance placed work)\n", stats.LoadImbalance)
	printKVCache(stats.KVCache)
	printChaos(stats.Chaos)
	printRouting("prefill", stats.PrefillRouting)
	printRouting("decode", stats.DecodeRouting)
	fmt.Println()

	fmt.Printf("  %-24s %7s %7s %7s %12s %9s %8s\n",
		"instance", "routed", "resumed", "done", "P95 TTFT", "tok/s", "peak KV")
	for _, is := range stats.Instances {
		fmt.Printf("  %-24s %7d %7d %7d %12v %9.0f %7.1f%%\n",
			is.Name, is.Routed, is.Resumed, is.Serve.Completed,
			is.Serve.P95TTFT, is.Serve.TokensPerSec, is.Serve.PeakKVFrac*100)
	}

	sloSet := sp.Serve != nil && sp.Serve.TTFTSLOMs > 0
	shares := make([]platformShare, len(stats.Instances))
	for i, is := range stats.Instances {
		shares[i] = platformShare{
			platform: is.Platform, placed: is.Routed + is.Resumed, done: is.Serve.Completed,
			tokps: is.Serve.TokensPerSec, slo: is.Serve.SLOAttainment,
		}
	}
	printPlatformBreakdown(sloSet, shares)
}

// printKVCache renders the prefix-cache ledger a fleet.kv_cache section
// produces; cacheless reports carry none and print nothing.
func printKVCache(k *skip.KVCacheStats) {
	if k == nil {
		return
	}
	fmt.Printf("  prefix cache %d lookups = %d hits + %d restored + %d misses + %d unallocated  (%.0f%% hit, %d tokens reused)\n",
		k.Lookups, k.Hits, k.Restored, k.Misses, k.Unallocated, k.HitRate*100, k.ReusedTokens)
	if k.Evictions > 0 || k.Spills > 0 {
		fmt.Printf("               %d evictions (%d spilled, %d host-dropped)  restore stall %v over %.2f GB\n",
			k.Evictions, k.Spills, k.HostEvictions, k.RestoreStall, k.RestoredBytes/1e9)
	}
}

// printChaos renders the churn ledger of a dynamic fleet (autoscale or
// fault injection active); static fleets carry none and print nothing.
func printChaos(c *skip.ChaosStats) {
	if c == nil {
		return
	}
	fmt.Printf("  fleet churn  %d joins, %d drains  active peak %d → final %d\n",
		c.Joins, c.Drains, c.PeakActive, c.FinalActive)
	fmt.Printf("  faults       %d crashes, %d slow nodes, %d degraded links\n",
		c.Crashes, c.SlowNodes, c.DegradedLinks)
	fmt.Printf("  requeues     %d killed = %d requeued + %d dropped  (%d session re-pins)\n",
		c.Killed, c.Requeued, c.Dropped, c.Repins)
}

func printGenerate(sp *skip.Spec, res *skip.GenerateResult) {
	fmt.Printf("%s / %s  BS=%d prompt=%d tokens=%d mode=%s\n",
		res.Request.Platform.Name, res.Request.Model.Name,
		sp.Run.Batch, sp.Run.Seq, sp.Run.NewTokens, res.Request.Mode)
	fmt.Printf("  TTFT (prefill)    %v  (%d kernels, GPU busy %v)\n",
		res.TTFT, res.PrefillKernels, res.PrefillGPUBusy)
	fmt.Printf("  TPOT (per token)  %v  (%d kernels/step)\n", res.TPOT, res.DecodeKernelsPerStep)
	fmt.Printf("  decode total      %v  (GPU busy %v)\n", res.DecodeTime, res.DecodeGPUBusy)
	fmt.Printf("  end-to-end        %v\n", res.Total)
}
