// Command skip is the SKIP-Sim command-line interface: simulate LLM
// inference on CPU-GPU coupled platform models, profile the resulting
// traces with SKIP's metrics, classify PU-boundedness across batch
// sweeps, and mine kernel-fusion recommendations.
//
// Usage:
//
//	skip platforms                         list platform catalog
//	skip models                            list model catalog
//	skip run        [flags]                simulate one inference, print metrics
//	skip analyze    -trace f.json          profile an existing trace file
//	skip classify   [flags]                batch sweep + transition detection
//	skip recommend  [flags]                proximity-score fusion recommendations
//	skip microbench                        Table V nullKernel microbenchmark
//
// Run `skip <command> -h` for per-command flags.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	skip "github.com/skipsim/skip"
	"github.com/skipsim/skip/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "platforms":
		err = cmdPlatforms()
	case "models":
		err = cmdModels()
	case "run":
		err = cmdRun(args)
	case "analyze":
		err = cmdAnalyze(args)
	case "classify":
		err = cmdClassify(args)
	case "recommend":
		err = cmdRecommend(args)
	case "generate":
		err = cmdGenerate(args)
	case "serve":
		err = cmdServe(args)
	case "cluster":
		err = cmdCluster(args)
	case "sim":
		err = cmdSim(args)
	case "bench-perf":
		err = cmdBenchPerf(args)
	case "microbench":
		err = cmdMicrobench()
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "skip: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "skip:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: skip <command> [flags]

commands:
  platforms    list the platform catalog (Table IV + MI300A projection)
  models       list the model catalog (Table III + fusion-study models)
  run          simulate one inference and print SKIP metrics
  analyze      profile an existing Chrome-trace JSON file
  classify     sweep batch sizes, print TKLQT series and the transition
  recommend    mine proximity-score fusion recommendations from a run
  generate     simulate prefill + autoregressive decode (TTFT, TPOT)
  serve        simulate an inference server under a request load
               (-policy static|greedy|continuous|chunked-prefill,
                -workload chat|agentic|summarize|mixed|fixed)
  cluster      simulate a multi-instance heterogeneous fleet behind a
               router (-fleet GH200:4,Intel+H100:4, -router round-robin|
               least-queue|least-kv|session-affinity|platform-aware,
               -admit-rate token-bucket admission); tagging fleet groups
               with roles (-fleet GH200:2/prefill,Intel+H100:2/decode)
               enables prefill/decode disaggregation with an
               interconnect-priced KV handoff (-prefill-router,
               -decode-router, -host-hop, -kv-transfer-gbps)
  sim          run a declarative experiment spec (-spec file.json): one
               JSON document selecting engine, serve, cluster, or
               disaggregated simulation, with scenario, arrival-process,
               or trace-replay workloads (see examples/specs/); a sweep
               section runs the document once per value of one field
               (points execute in parallel) and prints the series; -json
               prints the unified report machine-consumably; an
               observability.timeline spec section adds windowed fleet
               time series (-timeline-csv exports them), and -profile /
               -progress / -cpuprofile measure the simulator itself
  bench-perf   replay a canonical 8-instance fleet with profiling on and
               write the simulator's events/sec + allocs/event figures
               to BENCH_perf.json (-quick for CI smoke sizing)
  microbench   nullKernel launch-overhead microbenchmark (Table V)

run, generate, serve, and cluster are thin adapters that translate their
flags into the same experiment Spec that 'skip sim' loads from disk.`)
}

func cmdPlatforms() error {
	for _, name := range skip.PlatformNames() {
		p, err := skip.PlatformByName(name)
		if err != nil {
			return err
		}
		fmt.Printf("%-11s %s\n", name, p)
		fmt.Printf("             launch overhead %.1fns, null kernel %.1fns, HBM %.0f GB/s, FP16 %.0f TFLOPS\n",
			p.LaunchOverheadNs, p.GPU.NullKernelNs, p.GPU.HBMGBps, p.GPU.PeakFP16TFLOPS)
	}
	return nil
}

func cmdModels() error {
	for _, name := range skip.ModelNames() {
		m, err := skip.ModelByName(name)
		if err != nil {
			return err
		}
		fmt.Printf("%-18s %s\n", name, m)
	}
	return nil
}

// runFlags are shared by run/classify/recommend.
type runFlags struct {
	fs       *flag.FlagSet
	platform *string
	model    *string
	batch    *int64
	seq      *int64
	mode     *string
	out      *string
}

func newRunFlags(name string) *runFlags {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	return &runFlags{
		fs:       fs,
		platform: fs.String("platform", skip.GH200, "platform name (see `skip platforms`)"),
		model:    fs.String("model", "llama-3.2-1B", "model name (see `skip models`)"),
		batch:    fs.Int64("batch", 1, "batch size"),
		seq:      fs.Int64("seq", 512, "input sequence length"),
		mode:     fs.String("mode", "eager", "execution mode: eager|flash|compile-default|compile-reduce-overhead|compile-max-autotune"),
		out:      fs.String("o", "", "write the trace to this Chrome-trace JSON file"),
	}
}

func (rf *runFlags) parseMode() (skip.Mode, error) { return skip.ParseMode(*rf.mode) }

// runSpec builds the engine section of a Spec from the shared flags —
// the run/generate subcommands are flag-to-Spec adapters over the same
// declarative pipeline as `skip sim`.
func (rf *runFlags) runSpec(platformFile string, newTokens int) *skip.Spec {
	sp := &skip.Spec{
		Platform: *rf.platform,
		Model:    *rf.model,
		Mode:     *rf.mode,
		Run:      &skip.RunSpec{Batch: *rf.batch, Seq: *rf.seq, NewTokens: newTokens},
	}
	if platformFile != "" {
		sp.Platform = ""
		sp.PlatformFile = platformFile
	}
	return sp
}

func cmdRun(args []string) error {
	rf := newRunFlags("run")
	platformFile := rf.fs.String("platform-file", "", "load a custom platform definition (JSON) instead of -platform")
	if err := rf.fs.Parse(args); err != nil {
		return err
	}
	rep, err := skip.Simulate(rf.runSpec(*platformFile, 0))
	if err != nil {
		return err
	}
	printRun(rep.Run)
	if *rf.out != "" {
		if err := rep.Run.Trace.SaveFile(*rf.out); err != nil {
			return err
		}
		fmt.Printf("trace written to %s\n", *rf.out)
	}
	return nil
}

func printRun(res *skip.Result) {
	m, g, err := skip.Profile(res.Trace)
	if err != nil {
		fmt.Fprintln(os.Stderr, "skip: profiling:", err)
		return
	}
	fmt.Printf("%s / %s  BS=%d seq=%d mode=%s\n",
		res.Request.Platform.Name, res.Request.Model.Name,
		res.Request.Batch, res.Request.Seq, res.Request.Mode)
	fmt.Printf("  TTFT           %v\n", res.TTFT)
	fmt.Printf("  compile time   %v (one-time)\n", res.CompileTime)
	fmt.Printf("  kernels        %d (host launches %d)\n", res.KernelCount, res.HostLaunches)
	fmt.Printf("  TKLQT          %v   (mean launch delay %v)\n", m.TKLQT, m.MeanDelay)
	fmt.Printf("  AKD            %v\n", m.AKD)
	fmt.Printf("  GPU busy/idle  %v / %v\n", res.GPUBusy, res.GPUIdle)
	fmt.Printf("  CPU busy/idle  %v / %v\n", res.CPUBusy, res.CPUIdle)
	fmt.Printf("  boundedness    %v (queue share %.2f)\n", skip.ClassifyRun(m), m.QueueShare)
	if attr, err := skip.Attribute(res.Trace); err == nil {
		fmt.Printf("  attribution    %s\n", attr)
	}
	fmt.Println("  top kernels by total time:")
	for _, st := range g.TopKernels(5, 1) {
		fmt.Printf("    %-40s ×%-4d total %v (%.0f%% of GPU time)\n",
			st.Name, st.Count, st.TotalTime, st.ShareOfTime*100)
	}
}

func cmdAnalyze(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ContinueOnError)
	path := fs.String("trace", "", "Chrome-trace JSON file to analyze")
	topk := fs.Int("topk", 5, "top-k kernels to print")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *path == "" {
		return fmt.Errorf("analyze: -trace is required")
	}
	tr, err := trace.LoadFile(*path)
	if err != nil {
		return err
	}
	m, g, err := skip.Profile(tr)
	if err != nil {
		return err
	}
	fmt.Printf("trace %s: %d events\n", *path, len(tr.Events))
	fmt.Printf("  IL      %v\n", m.IL)
	fmt.Printf("  TKLQT   %v (min/mean/max delay %v/%v/%v)\n", m.TKLQT, m.MinDelay, m.MeanDelay, m.MaxDelay)
	fmt.Printf("  AKD     %v over %d kernels\n", m.AKD, m.KernelCount)
	fmt.Printf("  GPU idle %v, CPU idle %v\n", m.GPUIdle, m.CPUIdle)
	fmt.Printf("  boundedness %v\n", skip.ClassifyRun(m))
	if attr, err := skip.Attribute(tr); err == nil {
		fmt.Printf("  attribution %s\n", attr)
	}
	fmt.Println("  top kernels by count:")
	for _, st := range g.TopKernels(*topk, 0) {
		fmt.Printf("    %-40s ×%-4d mean %v\n", st.Name, st.Count, st.MeanTime)
	}
	return nil
}

func cmdClassify(args []string) error {
	rf := newRunFlags("classify")
	batches := rf.fs.String("batches", "1,2,4,8,16,32,64", "comma-separated batch sizes")
	if err := rf.fs.Parse(args); err != nil {
		return err
	}
	mode, err := rf.parseMode()
	if err != nil {
		return err
	}
	var series []skip.SeriesPoint
	fmt.Printf("%-8s %14s %14s %14s  %s\n", "batch", "TTFT", "TKLQT", "GPU idle", "class")
	for _, bs := range parseBatches(*batches) {
		res, err := skip.Run(*rf.platform, *rf.model, bs, *rf.seq, mode)
		if err != nil {
			return err
		}
		m, _, err := skip.Profile(res.Trace)
		if err != nil {
			return err
		}
		series = append(series, skip.SeriesPoint{Batch: bs, TKLQT: m.TKLQT, TTFT: res.TTFT, Metrics: m})
		fmt.Printf("%-8d %14v %14v %14v  %v\n", bs, res.TTFT, m.TKLQT, m.GPUIdle, skip.ClassifyRun(m))
	}
	tb, err := skip.TransitionBatch(series)
	if err != nil {
		return err
	}
	if tb == 0 {
		fmt.Println("transition: none within the sweep (CPU-bound throughout)")
	} else {
		fmt.Printf("transition: CPU-bound → GPU-bound at BS=%d ★\n", tb)
	}
	if lo, hi, ok := skip.BalancedRegion(series, 0.45); ok {
		fmt.Printf("balanced region (both PUs ≥55%% busy): BS %d–%d\n", lo, hi)
	}
	return nil
}

func cmdRecommend(args []string) error {
	rf := newRunFlags("recommend")
	threshold := rf.fs.Float64("threshold", 1.0, "minimum proximity score PS(C) for candidates")
	if err := rf.fs.Parse(args); err != nil {
		return err
	}
	mode, err := rf.parseMode()
	if err != nil {
		return err
	}
	res, err := skip.Run(*rf.platform, *rf.model, *rf.batch, *rf.seq, mode)
	if err != nil {
		return err
	}
	rep, err := skip.RecommendFusion(res.Trace, nil)
	if err != nil {
		return err
	}
	fmt.Printf("K_eager = %d kernels\n", rep.SequenceLen)
	fmt.Printf("%-8s %8s %10s %8s %8s %9s\n", "L", "unique", "instances", "PS≥T", "fused", "speedup")
	for _, row := range rep.Rows {
		fmt.Printf("%-8d %8d %10d %8d %8d %8.2fx\n",
			row.Length, row.UniqueChains, row.TotalInstances,
			len(row.Candidates(*threshold)), row.FusedChains, row.IdealSpeedup)
	}
	best, err := rep.BestSpeedup()
	if err != nil {
		return err
	}
	fmt.Printf("best: L=%d → %.2fx ideal speedup (%d kernels after fusion)\n",
		best.Length, best.IdealSpeedup, best.KernelsAfterFusion)
	return nil
}

func cmdMicrobench() error {
	fmt.Printf("%-12s %22s %18s\n", "platform", "launch overhead (ns)", "duration (ns)")
	for _, p := range skip.Platforms() {
		r := skip.MeasureNullKernel(p, 1000)
		fmt.Printf("%-12s %22.1f %18.1f\n", r.Platform, r.LaunchOverheadNs, r.DurationNs)
	}
	return nil
}

func parseBatches(s string) []int64 {
	var out []int64
	var cur int64
	ok := false
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if ok {
				out = append(out, cur)
			}
			cur, ok = 0, false
			continue
		}
		if s[i] >= '0' && s[i] <= '9' {
			cur = cur*10 + int64(s[i]-'0')
			ok = true
		}
	}
	return out
}

func cmdGenerate(args []string) error {
	rf := newRunFlags("generate")
	tokens := rf.fs.Int("tokens", 32, "number of decode tokens to generate")
	if err := rf.fs.Parse(args); err != nil {
		return err
	}
	if *tokens <= 0 {
		return fmt.Errorf("generate: -tokens must be positive, got %d", *tokens)
	}
	sp := rf.runSpec("", *tokens)
	rep, err := skip.Simulate(sp)
	if err != nil {
		return err
	}
	printReport(sp, rep)
	if *rf.out != "" {
		if err := rep.Generate.Trace.SaveFile(*rf.out); err != nil {
			return err
		}
		fmt.Printf("trace written to %s\n", *rf.out)
	}
	return nil
}

func cmdServe(args []string) error {
	rf := newRunFlags("serve")
	rate := rf.fs.Float64("rate", 20, "Poisson arrival rate (requests/second)")
	n := rf.fs.Int("requests", 60, "number of requests to simulate")
	policyName := rf.fs.String("policy", "continuous", "batching policy: static|greedy|continuous|chunked-prefill")
	workload := rf.fs.String("workload", "chat", "request stream: chat|agentic|summarize|mixed|fixed (fixed: -seq prompts, -out-tokens outputs) or trace:file.csv")
	maxBatch := rf.fs.Int("max-batch", 32, "greedy/continuous: maximum (running) batch size")
	staticBS := rf.fs.Int("static-batch", 8, "static: target batch size")
	outTokens := rf.fs.Int64("out-tokens", 64, "fixed workload: output tokens per request")
	chunk := rf.fs.Int64("chunk", 512, "chunked-prefill: prefill chunk size (tokens)")
	kvUtil := rf.fs.Float64("kv-util", 0.9, "fraction of GPU HBM for weights + KV cache")
	sloMs := rf.fs.Float64("slo-ttft-ms", 0, "TTFT SLO for goodput accounting (0: off)")
	abandonMs := rf.fs.Float64("abandon-ms", 0, "drop requests still queued after this long (0: never)")
	seed := rf.fs.Int64("seed", 1, "workload stream seed")
	if err := rf.fs.Parse(args); err != nil {
		return err
	}
	// These flags are explicit where the spec fields are optional: a 0
	// would silently mean "the default" (0.9 / 512 / 32) rather than
	// the impossible value the user typed.
	if *kvUtil <= 0 || *kvUtil > 1 {
		return fmt.Errorf("-kv-util must be in (0,1], got %g", *kvUtil)
	}
	if *rf.seq <= 0 {
		return fmt.Errorf("-seq must be positive, got %d", *rf.seq)
	}
	if *maxBatch <= 0 {
		return fmt.Errorf("-max-batch must be positive, got %d", *maxBatch)
	}
	sp := &skip.Spec{
		Platform: *rf.platform,
		Model:    *rf.model,
		Mode:     *rf.mode,
		Workload: workloadSpec(*workload, *n, *rate, *seed),
		Serve: &skip.ServeSpec{
			Policy:              *policyName,
			MaxBatch:            *maxBatch,
			BatchSize:           *staticBS,
			MaxWaitMs:           100,
			Seq:                 *rf.seq,
			DefaultOutputTokens: *outTokens,
			PrefillChunk:        *chunk,
			KVMemoryUtil:        *kvUtil,
			TTFTSLOMs:           *sloMs,
			AbandonAfterMs:      *abandonMs,
		},
	}
	rep, err := skip.Simulate(sp)
	if err != nil {
		return err
	}
	printReport(sp, rep)
	return nil
}

// workloadSpec maps the -workload flag to a Spec workload section:
// scenario names, "fixed" (bare Poisson arrivals with config-default
// lengths), or "trace:file.csv" for request-trace replay.
func workloadSpec(workload string, n int, rate float64, seed int64) *skip.WorkloadSpec {
	switch {
	case workload == "fixed":
		return &skip.WorkloadSpec{Requests: n, RatePerSec: rate, Seed: seed}
	case strings.HasPrefix(workload, "trace:"):
		return &skip.WorkloadSpec{TraceFile: strings.TrimPrefix(workload, "trace:")}
	default:
		return &skip.WorkloadSpec{Scenario: workload, Requests: n, RatePerSec: rate, Seed: seed}
	}
}
