package main

import (
	"flag"
	"fmt"

	skip "github.com/skipsim/skip"
	"github.com/skipsim/skip/internal/sim"
)

// cmdCluster simulates a multi-instance heterogeneous fleet behind a
// front-end router: `skip cluster -fleet GH200:4,Intel+H100:4 -router
// platform-aware -workload mixed`.
func cmdCluster(args []string) error {
	fs := flag.NewFlagSet("cluster", flag.ContinueOnError)
	fleetSpec := fs.String("fleet", "GH200:2,Intel+H100:2", "fleet spec: comma-separated platform:count (see `skip platforms`)")
	modelName := fs.String("model", "llama-3.2-1B", "model served by every instance")
	modeName := fs.String("mode", "eager", "execution mode: eager|flash|compile-default|compile-reduce-overhead|compile-max-autotune")
	routerName := fs.String("router", "least-queue", "routing policy: round-robin|least-queue|least-kv|session-affinity|platform-aware")
	shortPrompt := fs.Int64("short-prompt", 512, "platform-aware: prompts ≤ this many tokens prefer coupled instances")
	policyName := fs.String("policy", "continuous", "per-instance batching: continuous|chunked-prefill")
	workload := fs.String("workload", "mixed", "request stream: chat|agentic|summarize|mixed")
	rate := fs.Float64("rate", 40, "Poisson arrival rate (requests/second)")
	n := fs.Int("requests", 120, "number of requests to simulate")
	seed := fs.Int64("seed", 1, "workload stream seed")
	maxBatch := fs.Int("max-batch", 32, "per-instance maximum running batch size")
	chunk := fs.Int64("chunk", 512, "chunked-prefill: prefill chunk size (tokens)")
	kvUtil := fs.Float64("kv-util", 0.9, "fraction of GPU HBM for weights + KV cache")
	sloMs := fs.Float64("slo-ttft-ms", 0, "fleet TTFT SLO for goodput accounting (0: off)")
	abandonMs := fs.Float64("abandon-ms", 0, "drop requests still queued after this long (0: never)")
	admitRate := fs.Float64("admit-rate", 0, "token-bucket admission: sustained requests/second (0: off)")
	admitBurst := fs.Float64("admit-burst", 0, "token-bucket admission: bucket depth (default: one second's refill)")
	bucket := fs.Int64("latency-bucket", 256, "token quantum for the cached iteration-latency oracle")
	if err := fs.Parse(args); err != nil {
		return err
	}

	groups, err := skip.ParseFleet(*fleetSpec)
	if err != nil {
		return err
	}
	model, err := skip.ModelByName(*modelName)
	if err != nil {
		return err
	}
	mode, err := parseModeName(*modeName)
	if err != nil {
		return err
	}
	policy, err := skip.ParseServePolicy(*policyName)
	if err != nil {
		return err
	}
	if policy != skip.ContinuousBatch && policy != skip.ChunkedPrefill {
		return fmt.Errorf("cluster instances need a continuous batching policy, got %q", *policyName)
	}
	router, err := skip.ParseRouterPolicy(*routerName)
	if err != nil {
		return err
	}
	if *kvUtil <= 0 || *kvUtil > 1 {
		return fmt.Errorf("-kv-util must be in (0,1], got %g", *kvUtil)
	}
	scen, err := skip.ParseServeScenario(*workload)
	if err != nil {
		return err
	}
	requests, err := skip.GenerateWorkload(skip.ServeWorkload{
		Scenario: scen, N: *n, RatePerSec: *rate, Seed: *seed,
	})
	if err != nil {
		return err
	}

	base := skip.ServeConfig{
		Model: model, Seq: 512, Mode: mode, Policy: policy,
		MaxBatch: *maxBatch, PrefillChunk: *chunk, KVMemoryUtil: *kvUtil,
		AbandonAfter:  sim.Time(*abandonMs * 1e6),
		LatencyBucket: *bucket,
	}
	stats, err := skip.SimulateCluster(skip.ClusterConfig{
		Instances:       skip.FleetConfigs(groups, base),
		Policy:          router,
		ShortPrompt:     *shortPrompt,
		TTFTSLO:         sim.Time(*sloMs * 1e6),
		AdmitRatePerSec: *admitRate,
		AdmitBurst:      *admitBurst,
	}, requests)
	if err != nil {
		return err
	}

	fmt.Printf("fleet %s  model=%s router=%s workload=%s  offered %.0f req/s × %d requests\n",
		*fleetSpec, *modelName, stats.RouterPolicy, *workload, *rate, *n)
	fmt.Printf("  ledger       %d offered = %d rejected + %d unroutable + %d routed (%d completed, %d abandoned, %d preempted)\n",
		stats.Offered, stats.Rejected, stats.Unroutable, stats.Routed,
		stats.Completed, stats.Abandoned, stats.Preemptions)
	fmt.Printf("  TTFT         mean %v  P50 %v  P95 %v  P99 %v  max %v\n",
		stats.MeanTTFT, stats.P50TTFT, stats.P95TTFT, stats.P99TTFT, stats.MaxTTFT)
	fmt.Printf("  TPOT         mean %v  P50 %v  P95 %v\n", stats.MeanTPOT, stats.P50TPOT, stats.P95TPOT)
	fmt.Printf("  E2E          mean %v  P50 %v  P95 %v  max %v\n",
		stats.MeanE2E, stats.P50E2E, stats.P95E2E, stats.MaxE2E)
	fmt.Printf("  throughput   %.1f req/s  (%.0f tok/s)", stats.Throughput, stats.TokensPerSec)
	if sim.Time(*sloMs*1e6) > 0 {
		fmt.Printf("  goodput %.1f req/s, %.0f%% in SLO", stats.Goodput, stats.SLOAttainment*100)
	}
	fmt.Println()
	fmt.Printf("  imbalance    %.3f (CV of per-instance routed counts)\n\n", stats.LoadImbalance)

	fmt.Printf("  %-16s %7s %7s %12s %12s %9s %8s %8s\n",
		"instance", "routed", "done", "P95 TTFT", "P95 E2E", "tok/s", "peak KV", "preempt")
	for _, is := range stats.Instances {
		fmt.Printf("  %-16s %7d %7d %12v %12v %9.0f %7.1f%% %8d\n",
			is.Name, is.Routed, is.Serve.Completed,
			is.Serve.P95TTFT, is.Serve.P95E2E, is.Serve.TokensPerSec,
			is.Serve.PeakKVFrac*100, is.Serve.Preemptions)
	}
	return nil
}
