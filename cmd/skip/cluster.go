package main

import (
	"flag"
	"fmt"

	skip "github.com/skipsim/skip"
)

// cmdCluster simulates a multi-instance heterogeneous fleet behind a
// front-end router: `skip cluster -fleet GH200:4,Intel+H100:4 -router
// platform-aware -workload mixed`. It is a thin adapter translating
// flags into the same experiment Spec that `skip sim` loads from disk.
func cmdCluster(args []string) error {
	fs := flag.NewFlagSet("cluster", flag.ContinueOnError)
	fleetSpec := fs.String("fleet", "GH200:2,Intel+H100:2", "fleet spec: comma-separated platform:count[/role]; tagging roles (prefill|decode|both) enables prefill/decode disaggregation, e.g. GH200:2/prefill,Intel+H100:6/decode")
	modelName := fs.String("model", "llama-3.2-1B", "model served by every instance")
	modeName := fs.String("mode", "eager", "execution mode: eager|flash|compile-default|compile-reduce-overhead|compile-max-autotune")
	routerName := fs.String("router", "least-queue", "routing policy: round-robin|least-queue|least-kv|session-affinity|platform-aware (monolithic fleets; disaggregated fleets use -prefill-router/-decode-router)")
	prefillRouter := fs.String("prefill-router", "", "disaggregated fleets: prefill-pool placement policy (default least-queue)")
	decodeRouter := fs.String("decode-router", "", "disaggregated fleets: decode-pool placement policy (default least-kv)")
	hostHop := fs.Float64("host-hop", 0, "disaggregated fleets: KV-transfer wire-time multiplier per loosely-coupled endpoint (0: default 2)")
	transferGBps := fs.Float64("kv-transfer-gbps", 0, "disaggregated fleets: override the KV-transfer link bandwidth in GB/s (0: the endpoints' interconnects)")
	shortPrompt := fs.Int64("short-prompt", 512, "platform-aware: prompts ≤ this many tokens prefer coupled instances")
	policyName := fs.String("policy", "continuous", "per-instance batching: continuous|chunked-prefill")
	workload := fs.String("workload", "mixed", "request stream: chat|agentic|summarize|mixed or trace:file.csv")
	rate := fs.Float64("rate", 40, "Poisson arrival rate (requests/second)")
	n := fs.Int("requests", 120, "number of requests to simulate")
	seed := fs.Int64("seed", 1, "workload stream seed")
	maxBatch := fs.Int("max-batch", 32, "per-instance maximum running batch size")
	chunk := fs.Int64("chunk", 512, "chunked-prefill: prefill chunk size (tokens)")
	kvUtil := fs.Float64("kv-util", 0.9, "fraction of GPU HBM for weights + KV cache")
	sloMs := fs.Float64("slo-ttft-ms", 0, "fleet TTFT SLO for goodput accounting (0: off)")
	abandonMs := fs.Float64("abandon-ms", 0, "drop requests still queued after this long (0: never)")
	admitRate := fs.Float64("admit-rate", 0, "token-bucket admission: sustained requests/second (0: off)")
	admitBurst := fs.Float64("admit-burst", 0, "token-bucket admission: bucket depth (default: one second's refill)")
	bucket := fs.Int64("latency-bucket", 256, "token quantum for the cached iteration-latency oracle")
	if err := fs.Parse(args); err != nil {
		return err
	}

	parsed, err := skip.ParseFleet(*fleetSpec)
	if err != nil {
		return err
	}
	groups := make([]skip.FleetGroupSpec, len(parsed))
	disaggregated := false
	for i, g := range parsed {
		groups[i] = skip.FleetGroupSpec{Platform: g.Platform.Name, Count: g.Count, Role: g.Role}
		if g.Role != "" {
			disaggregated = true
		}
	}
	if !disaggregated && (*prefillRouter != "" || *decodeRouter != "" || *hostHop != 0 || *transferGBps != 0) {
		return fmt.Errorf("-prefill-router/-decode-router/-host-hop/-kv-transfer-gbps need a role-tagged fleet (e.g. -fleet GH200:2/prefill,Intel+H100:2/decode)")
	}
	routerSet := false
	fs.Visit(func(f *flag.Flag) { routerSet = routerSet || f.Name == "router" })
	if disaggregated && routerSet {
		return fmt.Errorf("disaggregated fleets route per pool: use -prefill-router/-decode-router instead of -router")
	}
	if *kvUtil <= 0 || *kvUtil > 1 {
		return fmt.Errorf("-kv-util must be in (0,1], got %g", *kvUtil)
	}
	if *maxBatch <= 0 {
		return fmt.Errorf("-max-batch must be positive, got %d", *maxBatch)
	}
	sp := &skip.Spec{
		Model:    *modelName,
		Mode:     *modeName,
		Workload: workloadSpec(*workload, *n, *rate, *seed),
		Serve: &skip.ServeSpec{
			Policy:         *policyName,
			MaxBatch:       *maxBatch,
			Seq:            512,
			PrefillChunk:   *chunk,
			KVMemoryUtil:   *kvUtil,
			TTFTSLOMs:      *sloMs,
			AbandonAfterMs: *abandonMs,
			LatencyBucket:  *bucket,
		},
		Fleet: &skip.FleetSpec{
			Groups:          groups,
			Router:          *routerName,
			ShortPrompt:     *shortPrompt,
			AdmitRatePerSec: *admitRate,
			AdmitBurst:      *admitBurst,
		},
	}
	if disaggregated {
		// Disaggregated fleets route per pool; the -router flag's default
		// must not trip the spec's mutual-exclusion check.
		sp.Fleet.Router = ""
		sp.Fleet.Disaggregation = &skip.DisaggregationSpec{
			PrefillRouter:     *prefillRouter,
			DecodeRouter:      *decodeRouter,
			HostHopMultiplier: *hostHop,
			BandwidthGBps:     *transferGBps,
		}
	}
	rep, err := skip.Simulate(sp)
	if err != nil {
		return err
	}
	printReport(sp, rep)
	return nil
}
