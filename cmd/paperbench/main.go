// Command paperbench regenerates every table and figure of the paper's
// evaluation from the simulator + SKIP pipeline, printing the same
// rows/series the paper reports along with paper-shape checks.
//
// Usage:
//
//	paperbench               run every experiment
//	paperbench -exp fig6     run one experiment
//	paperbench -list         list experiment ids
//	paperbench -o out.txt    also write the report to a file
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	skip "github.com/skipsim/skip"
)

func main() {
	exp := flag.String("exp", "", "run a single experiment by id (e.g. table5, fig6)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	out := flag.String("o", "", "also write the report to this file")
	flag.Parse()

	if *list {
		for _, e := range skip.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	var experiments []*skip.Experiment
	if *exp != "" {
		e, err := skip.ExperimentByID(*exp)
		if err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			os.Exit(2)
		}
		experiments = []*skip.Experiment{e}
	} else {
		experiments = skip.Experiments()
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	failures := 0
	for _, e := range experiments {
		r, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: %s: %v\n", e.ID, err)
			failures++
			continue
		}
		if err := r.Render(w); err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			os.Exit(1)
		}
		if !r.Passed() {
			failures++
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "paperbench: %d experiment(s) failed their paper-shape checks\n", failures)
		os.Exit(1)
	}
	fmt.Fprintln(w, "paperbench: all experiments reproduce the paper's shapes")
}
